// Package kclique generalizes triangle counting to k-cliques — the
// first future-work direction of the paper (§7): "TC is the simplest
// form of the k-clique counting problem ... the skewed statistics on
// triangles containing hubs will become even more skewed for larger
// cliques."
//
// Two counters are provided:
//
//   - Count: the classic ordered enumeration on an oriented graph
//     (each k-clique counted exactly once at its maximum vertex).
//   - CountLotus: the LOTUS-flavoured variant. All-hub cliques are
//     counted on dense per-hub bitsets (word-parallel candidate
//     intersection — the k-clique analog of the H2H bit array), and
//     cliques containing a non-hub are rooted at non-hub vertices
//     using the split HE/NHE neighbour lists.
//
// Both return identical totals (enforced by tests).
package kclique

import (
	"math/bits"

	"lotustc/internal/core"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

// Count counts k-cliques on an oriented graph (neighbour lists
// restricted to lower IDs, as produced by graph.Orient). k >= 1;
// k == 1 returns |V|, k == 2 returns |E|, k == 3 returns triangles.
func Count(og *graph.Graph, k int, pool *sched.Pool) uint64 {
	if k < 1 {
		return 0
	}
	n := og.NumVertices()
	if k == 1 {
		return uint64(n)
	}
	if k == 2 {
		return uint64(og.NumDirectedEdges())
	}
	acc := sched.NewAccumulator(pool.Workers())
	pool.For(n, 0, func(worker, start, end int) {
		// Scratch candidate buffers, one per recursion depth.
		scratch := make([][]uint32, k)
		var local uint64
		for v := start; v < end; v++ {
			local += cliqueRec(og, og.Neighbors(uint32(v)), k-1, scratch)
		}
		acc.Add(worker, local)
	})
	return acc.Sum()
}

// cliqueRec counts (depth)-cliques within cand, all of whose members
// are mutually adjacent to the already-chosen prefix.
func cliqueRec(og *graph.Graph, cand []uint32, depth int, scratch [][]uint32) uint64 {
	if depth == 1 {
		return uint64(len(cand))
	}
	var total uint64
	buf := scratch[depth]
	for i, u := range cand {
		// Intersect the remaining candidates with N^<(u). Only
		// candidates below u matter, and cand is sorted, so the
		// prefix cand[:i] suffices.
		buf = intersectInto(buf[:0], cand[:i], og.Neighbors(u))
		if len(buf) >= depth-1 {
			total += cliqueRec(og, buf, depth-1, scratch)
		}
	}
	scratch[depth] = buf
	return total
}

// intersectInto writes a ∩ b into dst (sorted inputs) and returns it.
func intersectInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// CountLotus counts k-cliques using the LOTUS structures. A clique's
// maximum vertex is a hub iff all its vertices are hubs (hubs occupy
// the lowest IDs), so the count splits exactly into:
//
//   - all-hub cliques, enumerated over dense hub bitsets with
//     word-parallel intersection, and
//   - cliques with >= 1 non-hub, rooted at their (non-hub) maximum
//     vertex using the concatenated HE/NHE lists.
func CountLotus(lg *core.LotusGraph, k int, pool *sched.Pool) uint64 {
	if k < 1 {
		return 0
	}
	n := lg.NumVertices()
	if k == 1 {
		return uint64(n)
	}
	if k == 2 {
		return uint64(lg.HE.NumEdges() + lg.NHE.NumEdges())
	}
	hubs := int(lg.HubCount)
	if hubs > n {
		hubs = n
	}
	words := (hubs + 63) / 64
	// Dense bitset rows over hubs: row[h] bit w set iff w < h and
	// (h,w) is an edge. Built from the HE rows of hubs.
	rows := make([][]uint64, hubs)
	flat := make([]uint64, hubs*words)
	for h := 0; h < hubs; h++ {
		rows[h] = flat[h*words : (h+1)*words]
		for _, w := range lg.HE.Neighbors(uint32(h)) {
			rows[h][w>>6] |= 1 << (uint(w) & 63)
		}
	}

	acc := sched.NewAccumulator(pool.Workers())
	// Part 1: all-hub cliques, one task per hub root.
	pool.For(hubs, 0, func(worker, start, end int) {
		scratch := make([][]uint64, k)
		for d := range scratch {
			scratch[d] = make([]uint64, words)
		}
		var local uint64
		for h := start; h < end; h++ {
			local += hubCliqueRec(rows, rows[h], k-1, scratch)
		}
		acc.Add(worker, local)
	})
	// Part 2: cliques rooted at non-hubs. Candidate lists are the
	// concatenated (HE ++ NHE) N^< lists, which stay sorted because
	// every hub ID precedes every non-hub ID.
	pool.For(n-hubs, 0, func(worker, start, end int) {
		scratch := make([][]uint32, k)
		var local uint64
		for i := start; i < end; i++ {
			v := uint32(hubs + i)
			cand := concatNeighbors(lg, v, nil)
			local += lotusCliqueRec(lg, cand, k-1, scratch)
		}
		acc.Add(worker, local)
	})
	return acc.Sum()
}

// concatNeighbors returns HE[v] ++ NHE[v] as uint32s, appended to dst.
func concatNeighbors(lg *core.LotusGraph, v uint32, dst []uint32) []uint32 {
	for _, h := range lg.HE.Neighbors(v) {
		dst = append(dst, uint32(h))
	}
	return append(dst, lg.NHE.Neighbors(v)...)
}

// lotusCliqueRec mirrors cliqueRec over the split neighbour lists.
func lotusCliqueRec(lg *core.LotusGraph, cand []uint32, depth int, scratch [][]uint32) uint64 {
	if depth == 1 {
		return uint64(len(cand))
	}
	var total uint64
	buf := scratch[depth]
	nbuf := make([]uint32, 0, 16)
	for i, u := range cand {
		nbuf = concatNeighbors(lg, u, nbuf[:0])
		buf = intersectInto(buf[:0], cand[:i], nbuf)
		if len(buf) >= depth-1 {
			total += lotusCliqueRec(lg, buf, depth-1, scratch)
		}
	}
	scratch[depth] = buf
	return total
}

// hubCliqueRec counts (depth)-cliques inside the candidate bitset
// using word-parallel AND with each member's row.
func hubCliqueRec(rows [][]uint64, cand []uint64, depth int, scratch [][]uint64) uint64 {
	if depth == 1 {
		var c uint64
		for _, w := range cand {
			c += uint64(bits.OnesCount64(w))
		}
		return c
	}
	var total uint64
	next := scratch[depth]
	for wi, w := range cand {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			u := wi*64 + b
			row := rows[u]
			nonEmpty := false
			for x := range next {
				next[x] = cand[x] & row[x]
				if next[x] != 0 {
					nonEmpty = true
				}
			}
			if nonEmpty || depth-1 == 1 {
				total += hubCliqueRec(rows, next, depth-1, scratch)
			}
		}
	}
	return total
}
