// Package reorder builds vertex relabeling arrays. Baseline TC
// algorithms use full degree ordering (§2.2, Algorithm 1); LOTUS uses
// its own relabeling (§4.3.1) that moves only the hubs and other
// high-degree vertices to the front while preserving the original
// order — and therefore the original spatial locality — of everything
// else.
//
// A relabeling array ra is indexed by the original vertex ID and holds
// the new ID (a permutation of 0..|V|-1), exactly as
// create_relabeling_array() returns in the paper.
package reorder

import (
	"sort"

	"lotustc/internal/graph"
)

// Identity returns the identity relabeling.
func Identity(n int) []uint32 {
	ra := make([]uint32, n)
	for i := range ra {
		ra[i] = uint32(i)
	}
	return ra
}

// byDegreeDesc returns vertex IDs sorted by degree descending, ties
// broken by ascending original ID for determinism.
func byDegreeDesc(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	deg := g.Degrees()
	sort.SliceStable(ids, func(i, j int) bool {
		di, dj := deg[ids[i]], deg[ids[j]]
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// DegreeOrder returns the full degree-descending relabeling used by
// the Forward algorithm and the framework baselines: the vertex with
// the highest degree becomes 0, and so on.
func DegreeOrder(g *graph.Graph) []uint32 {
	ids := byDegreeDesc(g)
	ra := make([]uint32, len(ids))
	for newID, oldID := range ids {
		ra[oldID] = uint32(newID)
	}
	return ra
}

// LotusOptions tune the LOTUS relabeling.
type LotusOptions struct {
	// HubCount is the number of hubs (paper: 2^16). It also sets the
	// minimum size of the reordered front block.
	HubCount int
	// FrontFraction is the fraction of highest-degree vertices moved
	// to the front in degree order (paper: 10%, i.e. 0.10). The front
	// block size is max(HubCount, FrontFraction*|V|), capped at |V|.
	FrontFraction float64
}

// DefaultFrontFraction is the paper's 10% front block (§4.3.1).
const DefaultFrontFraction = 0.10

// Lotus returns the LOTUS relabeling array: the front block (hubs plus
// other high-degree vertices, §4.3.1) receives the first consecutive
// IDs in degree-descending order; all remaining vertices keep their
// original relative order, preserving the graph's initial locality.
func Lotus(g *graph.Graph, opt LotusOptions) []uint32 {
	n := g.NumVertices()
	if opt.FrontFraction <= 0 {
		opt.FrontFraction = DefaultFrontFraction
	}
	front := int(opt.FrontFraction * float64(n))
	if opt.HubCount > front {
		front = opt.HubCount
	}
	if front > n {
		front = n
	}
	ids := byDegreeDesc(g)
	ra := make([]uint32, n)
	inFront := make([]bool, n)
	for i := 0; i < front; i++ {
		ra[ids[i]] = uint32(i)
		inFront[ids[i]] = true
	}
	next := uint32(front)
	for old := 0; old < n; old++ {
		if !inFront[old] {
			ra[old] = next
			next++
		}
	}
	return ra
}

// DegeneracyOrder returns the relabeling induced by a k-core
// (degeneracy) peeling: vertices are repeatedly removed in order of
// minimum remaining degree, and the i-th removed vertex gets new ID
// n-1-i. A vertex's not-yet-removed neighbours at removal time (at
// most the degeneracy of the graph) are exactly the ones that end up
// with *smaller* new IDs, so after Orient every forward list N^< has
// length <= degeneracy — the ordering behind node-iterator-core [62],
// giving the Forward algorithm its best worst-case intersection
// sizes. Returns the relabeling array and the degeneracy.
func DegeneracyOrder(g *graph.Graph) ([]uint32, int) {
	n := g.NumVertices()
	deg := make([]int32, n)
	maxd := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if int(deg[v]) > maxd {
			maxd = int(deg[v])
		}
	}
	buckets := make([][]uint32, maxd+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	removed := make([]bool, n)
	ra := make([]uint32, n)
	degeneracy := 0
	next := uint32(0)
	cur := 0
	for processed := 0; processed < n; {
		for cur <= maxd && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxd {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != int32(cur) {
			continue // stale entry
		}
		removed[v] = true
		ra[v] = uint32(n-1) - next
		next++
		processed++
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			deg[u]--
			buckets[deg[u]] = append(buckets[deg[u]], u)
			if int(deg[u]) < cur {
				cur = int(deg[u])
			}
		}
	}
	return ra, degeneracy
}

// Inverse returns the inverse permutation (new -> old), useful to map
// results back to original vertex IDs.
func Inverse(ra []uint32) []uint32 {
	inv := make([]uint32, len(ra))
	for old, nw := range ra {
		inv[nw] = uint32(old)
	}
	return inv
}

// IsPermutation verifies that ra is a bijection on 0..len(ra)-1.
func IsPermutation(ra []uint32) bool {
	seen := make([]bool, len(ra))
	for _, x := range ra {
		if int(x) >= len(ra) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}
