package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

func TestIdentity(t *testing.T) {
	ra := Identity(5)
	for i, x := range ra {
		if int(x) != i {
			t.Fatalf("Identity[%d] = %d", i, x)
		}
	}
	if !IsPermutation(ra) {
		t.Fatal("identity not a permutation")
	}
}

func TestDegreeOrder(t *testing.T) {
	// Star: center 0 must get new ID 0; leaves keep ascending order.
	g := gen.Star(6)
	ra := DegreeOrder(g)
	if ra[0] != 0 {
		t.Fatalf("center relabeled to %d, want 0", ra[0])
	}
	if !IsPermutation(ra) {
		t.Fatal("not a permutation")
	}
	// Relabeled graph must have non-increasing degrees by new ID.
	rg := g.Relabel(ra)
	for v := 1; v < rg.NumVertices(); v++ {
		if rg.Degree(uint32(v)) > rg.Degree(uint32(v-1)) {
			t.Fatalf("degree order violated at %d", v)
		}
	}
}

func TestDegreeOrderDeterministicTies(t *testing.T) {
	g := gen.Ring(8) // all degrees equal: order must be original IDs
	ra := DegreeOrder(g)
	for i, x := range ra {
		if int(x) != i {
			t.Fatalf("tie-breaking not by ID: ra[%d] = %d", i, x)
		}
	}
}

func TestLotusFrontBlock(t *testing.T) {
	// Hub-and-spokes: the 8 hubs have highest degree and must land in
	// the front block in degree order; leaves must preserve order.
	g := gen.HubAndSpokes(8, 92, 3, 1)
	ra := Lotus(g, LotusOptions{HubCount: 8, FrontFraction: 0.08})
	if !IsPermutation(ra) {
		t.Fatal("not a permutation")
	}
	// All original hubs (IDs 0..7, the max-degree vertices) must map
	// below 8.
	for h := 0; h < 8; h++ {
		if ra[h] >= 8 {
			t.Fatalf("hub %d mapped to %d, want < 8", h, ra[h])
		}
	}
	// Non-front vertices must preserve relative order.
	prev := -1
	for old := 8; old < g.NumVertices(); old++ {
		if int(ra[old]) < 8 {
			continue // promoted into front block
		}
		if int(ra[old]) <= prev {
			t.Fatalf("non-front order broken at %d: %d <= %d", old, ra[old], prev)
		}
		prev = int(ra[old])
	}
}

func TestLotusFrontSizeRules(t *testing.T) {
	g := gen.ErdosRenyi(1000, 4000, 2)
	// FrontFraction 0.10 with HubCount 16 -> front = 100.
	ra := Lotus(g, LotusOptions{HubCount: 16, FrontFraction: 0.10})
	if !IsPermutation(ra) {
		t.Fatal("not a permutation")
	}
	// HubCount larger than fraction -> front = HubCount.
	ra2 := Lotus(g, LotusOptions{HubCount: 500, FrontFraction: 0.10})
	if !IsPermutation(ra2) {
		t.Fatal("not a permutation")
	}
	// HubCount > |V| must clamp, not panic.
	ra3 := Lotus(g, LotusOptions{HubCount: 5000, FrontFraction: 0.10})
	if !IsPermutation(ra3) {
		t.Fatal("clamped relabel not a permutation")
	}
}

func TestLotusDefaultFraction(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 3)
	ra := Lotus(g, LotusOptions{HubCount: 4})
	if !IsPermutation(ra) {
		t.Fatal("not a permutation with default fraction")
	}
}

func TestLotusHighestDegreeFirst(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(10, 8, 5))
	ra := Lotus(g, LotusOptions{HubCount: 64, FrontFraction: 0.10})
	rg := g.Relabel(ra)
	// New vertex 0 must hold the max degree of the graph.
	if rg.Degree(0) != g.MaxDegree() {
		t.Fatalf("new vertex 0 degree %d != max degree %d", rg.Degree(0), g.MaxDegree())
	}
	// Front block must be degree-sorted descending.
	for v := 1; v < 64; v++ {
		if rg.Degree(uint32(v)) > rg.Degree(uint32(v-1)) {
			t.Fatalf("front block unsorted at %d", v)
		}
	}
	// Hubs (front of the new numbering) must dominate degrees: the
	// minimum front-block degree must be >= the maximum tail degree.
	minFront := rg.Degree(0)
	front := 64
	if f := g.NumVertices() / 10; f > front {
		front = f
	}
	for v := 0; v < front; v++ {
		if d := rg.Degree(uint32(v)); d < minFront {
			minFront = d
		}
	}
	for v := front; v < rg.NumVertices(); v++ {
		if rg.Degree(uint32(v)) > minFront {
			t.Fatalf("tail vertex %d degree %d exceeds min front degree %d", v, rg.Degree(uint32(v)), minFront)
		}
	}
}

func TestDegeneracyOrderKnownValues(t *testing.T) {
	if _, d := DegeneracyOrder(gen.Complete(5)); d != 4 {
		t.Fatalf("K5 degeneracy = %d, want 4", d)
	}
	if _, d := DegeneracyOrder(gen.Ring(20)); d != 2 {
		t.Fatalf("ring degeneracy = %d, want 2", d)
	}
	if _, d := DegeneracyOrder(gen.Star(20)); d != 1 {
		t.Fatalf("star degeneracy = %d, want 1", d)
	}
	if _, d := DegeneracyOrder(gen.PlantedTriangles(5, 3)); d != 2 {
		t.Fatalf("planted degeneracy = %d, want 2", d)
	}
	ra, _ := DegeneracyOrder(gen.Complete(5))
	if !IsPermutation(ra) {
		t.Fatal("K5 order not a permutation")
	}
}

func TestDegeneracyOrderBoundsForwardLists(t *testing.T) {
	// The defining property: after relabel+orient, every forward
	// list has length <= degeneracy.
	graphs := []*graph.Graph{
		gen.RMAT(gen.DefaultRMAT(10, 8, 2)),
		gen.BarabasiAlbert(800, 4, 3),
		gen.HubAndSpokes(10, 300, 3, 4),
	}
	for _, g := range graphs {
		ra, d := DegeneracyOrder(g)
		if !IsPermutation(ra) {
			t.Fatal("not a permutation")
		}
		og := g.Relabel(ra).Orient()
		for v := 0; v < og.NumVertices(); v++ {
			if og.Degree(uint32(v)) > d {
				t.Fatalf("forward list of %d has %d > degeneracy %d",
					v, og.Degree(uint32(v)), d)
			}
		}
	}
}

func TestInverse(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		perm := rng.Perm(n)
		ra := make([]uint32, n)
		for i, p := range perm {
			ra[i] = uint32(p)
		}
		inv := Inverse(ra)
		for old := 0; old < n; old++ {
			if inv[ra[old]] != uint32(old) {
				return false
			}
		}
		return IsPermutation(inv)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIsPermutationRejects(t *testing.T) {
	if IsPermutation([]uint32{0, 0}) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]uint32{0, 2}) {
		t.Fatal("out of range accepted")
	}
	if !IsPermutation([]uint32{}) {
		t.Fatal("empty should be a permutation")
	}
}

func TestRelabelKeepsTriangleStructure(t *testing.T) {
	// Relabeling must not change |E| or the degree multiset, and the
	// relabeled graph must validate. (Triangle invariance is covered
	// end-to-end in the core package tests.)
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 9))
	for name, ra := range map[string][]uint32{
		"degree": DegreeOrder(g),
		"lotus":  Lotus(g, LotusOptions{HubCount: 16}),
	} {
		rg := g.Relabel(ra)
		if rg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: |E| changed", name)
		}
		if err := rg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
