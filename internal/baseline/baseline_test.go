package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
	"lotustc/internal/sched"
)

var pool = sched.NewPool(4)

// allAlgorithms runs every baseline on g and returns name->count.
func allAlgorithms(g *graph.Graph) map[string]uint64 {
	return map[string]uint64{
		"forward-merge":     Forward(g, pool, KernelMerge),
		"forward-binary":    Forward(g, pool, KernelBinary),
		"forward-hash":      Forward(g, pool, KernelHash),
		"forward-galloping": Forward(g, pool, KernelGalloping),
		"forward-degen":     ForwardDegeneracy(g, pool, KernelMerge),
		"node-iterator":     NodeIterator(g, pool),
		"edge-iterator":     EdgeIterator(g, pool),
		"gbbs":              GBBS(g, pool),
		"bbtc":              BBTC(g, pool, 4),
	}
}

func TestKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"empty", graph.FromEdges(nil, graph.BuildOptions{}), 0},
		{"single-edge", graph.FromEdges([]graph.Edge{{U: 0, V: 1}}, graph.BuildOptions{}), 0},
		{"triangle", gen.Complete(3), 1},
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"K10", gen.Complete(10), 120},
		{"star", gen.Star(50), 0},
		{"ring", gen.Ring(50), 0},
		{"path", gen.Path(50), 0},
		{"grid", gen.Grid(6, 7), 0},
		{"bipartite", gen.CompleteBipartite(5, 7), 0},
		{"planted", gen.PlantedTriangles(11, 4), 11},
		// HubAndSpokes(h, l, a): C(h,3) HHH + l*C(a,2) HHN triangles.
		{"hubspokes", gen.HubAndSpokes(6, 40, 3, 2), 20 + 40*3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if bf := BruteForce(c.g); bf != c.want {
				t.Fatalf("BruteForce = %d, want %d (oracle bug)", bf, c.want)
			}
			for name, got := range allAlgorithms(c.g) {
				if got != c.want {
					t.Errorf("%s = %d, want %d", name, got, c.want)
				}
			}
		})
	}
}

func TestAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		m := rng.Intn(4 * n)
		var edges []graph.Edge
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		want := BruteForce(g)
		for name, got := range allAlgorithms(g) {
			if got != want {
				t.Logf("seed %d: %s = %d, want %d", seed, name, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAgreeOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":    gen.RMAT(gen.DefaultRMAT(9, 8, 1)),
		"chunglu": gen.ChungLu(gen.ChungLuParams{N: 512, M: 4096, Gamma: 2.2, Seed: 2}),
		"er":      gen.ErdosRenyi(512, 2048, 3),
	}
	for gname, g := range graphs {
		want := Forward(g, pool, KernelMerge)
		for name, got := range allAlgorithms(g) {
			if got != want {
				t.Errorf("%s/%s = %d, want %d", gname, name, got, want)
			}
		}
	}
}

func TestBBTCBlockCounts(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 4))
	want := BruteForce(g)
	for _, blocks := range []int{1, 2, 3, 7, 16, 100} {
		if got := BBTC(g, pool, blocks); got != want {
			t.Errorf("BBTC blocks=%d: %d, want %d", blocks, got, want)
		}
	}
	// blocks <= 0 must pick a default, not panic.
	if got := BBTC(g, pool, 0); got != want {
		t.Errorf("BBTC default blocks: %d, want %d", got, want)
	}
}

func TestSingleWorkerPool(t *testing.T) {
	g := gen.RMAT(gen.DefaultRMAT(8, 8, 5))
	p1 := sched.NewPool(1)
	want := BruteForce(g)
	if got := Forward(g, p1, KernelMerge); got != want {
		t.Errorf("Forward 1 worker = %d, want %d", got, want)
	}
	if got := GBBS(g, p1); got != want {
		t.Errorf("GBBS 1 worker = %d, want %d", got, want)
	}
}

func TestSearchOffsets(t *testing.T) {
	offsets := []int64{0, 0, 3, 3, 5, 9}
	cases := []struct {
		e    int64
		want int
	}{{0, 1}, {1, 1}, {2, 1}, {3, 3}, {4, 3}, {5, 4}, {8, 4}}
	for _, c := range cases {
		if got := searchOffsets(offsets, c.e); got != c.want {
			t.Errorf("searchOffsets(%d) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{
		KernelMerge: "merge", KernelBinary: "binary",
		KernelHash: "hash", KernelGalloping: "galloping", Kernel(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kernel(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkForwardKernels(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(14, 8, 1))
	for _, k := range []Kernel{KernelMerge, KernelBinary, KernelHash, KernelGalloping} {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Forward(g, pool, k)
			}
		})
	}
}

func BenchmarkBaselines(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(13, 8, 1))
	b.Run("edge-iterator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EdgeIterator(g, pool)
		}
	})
	b.Run("gbbs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			GBBS(g, pool)
		}
	})
	b.Run("bbtc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BBTC(g, pool, 16)
		}
	})
}
