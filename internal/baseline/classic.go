package baseline

import (
	"math/bits"

	"lotustc/internal/graph"
	"lotustc/internal/intersect"
	"lotustc/internal/sched"
)

// This file implements the classic algorithms §6.1 surveys — the
// lineage LOTUS descends from. They are exercised by the
// baselines-classic experiment and the cross-algorithm agreement
// tests.

// NewVertexListing is Latapy's algorithm [48]: for each vertex,
// mark its neighbours in a (reused) bitmap, then for each neighbour u
// count how many of u's neighbours are marked. Restricting the scan
// to u < v and marked w < u counts each triangle exactly once.
// LOTUS borrows the bitmap idea for its H2H array, but applies it to
// all hub-hub edges at once rather than one vertex at a time.
func NewVertexListing(g *graph.Graph, pool *sched.Pool) uint64 {
	n := g.NumVertices()
	acc := sched.NewAccumulator(pool.Workers())
	bitmaps := make([]*intersect.Bitmap, pool.Workers())
	for i := range bitmaps {
		bitmaps[i] = intersect.NewBitmap(n)
	}
	pool.For(n, 0, func(worker, start, end int) {
		bm := bitmaps[worker]
		var local uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			nv := g.Neighbors(uint32(v))
			bm.Reset()
			for _, u := range nv {
				if u < uint32(v) {
					bm.Set(u)
				}
			}
			for _, u := range nv {
				if u >= uint32(v) {
					break
				}
				for _, w := range g.Neighbors(u) {
					if w >= u {
						break
					}
					if bm.Get(w) {
						local++
					}
				}
			}
		}
		acc.Add(worker, local)
	})
	return acc.Sum()
}

// NodeIteratorCore is Schank & Wagner's improvement [62]: repeatedly
// take a minimum-degree vertex, count the edges among its remaining
// neighbours, and delete it. Deletion keeps every intersection small
// (bounded by the graph's degeneracy). Sequential by nature — the
// removal order is a data dependence — so it runs single-threaded;
// the pool is consulted only for cooperative cancellation.
func NodeIteratorCore(g *graph.Graph, pool *sched.Pool) uint64 {
	n := g.NumVertices()
	deg := make([]int32, n)
	maxd := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(uint32(v)))
		if int(deg[v]) > maxd {
			maxd = int(deg[v])
		}
	}
	// Bucket queue over degrees (the O(V+E) k-core machinery).
	buckets := make([][]uint32, maxd+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], uint32(v))
	}
	removed := make([]bool, n)
	pos := make([]int32, n) // current degree of v (lazy bucket entries)
	copy(pos, deg)

	var count uint64
	var alive []uint32
	processed := 0
	cur := 0
	for processed < n {
		if pool != nil && pool.Cancelled() {
			break
		}
		for cur <= maxd && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxd {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || pos[v] != int32(cur) {
			continue // stale bucket entry
		}
		removed[v] = true
		processed++
		// Gather the alive neighbours once; their count is bounded by
		// v's current degree (= cur <= degeneracy), so the pair loop
		// below is small even for original hubs.
		alive = alive[:0]
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				alive = append(alive, u)
			}
		}
		for i, u := range alive {
			for _, w := range alive[i+1:] {
				if g.HasEdge(u, w) {
					count++
				}
			}
			// Degree decrement for u; push lazily into its bucket.
			pos[u]--
			buckets[pos[u]] = append(buckets[pos[u]], u)
			if int(pos[u]) < cur {
				cur = int(pos[u])
			}
		}
	}
	return count
}

// AYZ implements Alon-Yuster-Zwick [1] in its combinatorial form:
// pick a degree threshold δ; triangles containing a low-degree vertex
// are found by enumerating wedges centred at low-degree vertices
// (each such triangle charged to its lowest-ID low-degree vertex),
// and triangles whose three corners are all high-degree are counted
// on the dense high-degree induced sub-graph with an adjacency bit
// matrix (standing in for the paper's fast matrix multiplication).
// δ <= 0 picks ceil(sqrt(|E|)), the theoretically optimal split.
func AYZ(g *graph.Graph, pool *sched.Pool, delta int) uint64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if delta <= 0 {
		delta = 1
		for int64(delta)*int64(delta) < g.NumEdges() {
			delta++
		}
	}
	isLow := make([]bool, n)
	var highIDs []uint32
	highIndex := make([]int32, n)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) <= delta {
			isLow[v] = true
			highIndex[v] = -1
		} else {
			highIndex[v] = int32(len(highIDs))
			highIDs = append(highIDs, uint32(v))
		}
	}

	// Part 1: triangles with >= 1 low-degree vertex, charged to the
	// smallest-ID low-degree corner: enumerate neighbour pairs (u,w)
	// of each low vertex v with the charge condition, test adjacency.
	acc := sched.NewAccumulator(pool.Workers())
	pool.For(n, 0, func(worker, start, end int) {
		var local uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			if !isLow[v] {
				continue
			}
			nv := g.Neighbors(uint32(v))
			for i := 0; i < len(nv); i++ {
				u := nv[i]
				if isLow[u] && u < uint32(v) {
					continue // triangle charged to u instead
				}
				for j := i + 1; j < len(nv); j++ {
					w := nv[j]
					if isLow[w] && w < uint32(v) {
						continue
					}
					if g.HasEdge(u, w) {
						local++
					}
				}
			}
		}
		acc.Add(worker, local)
	})
	count := acc.Sum()

	// Part 2: all-high triangles on the dense bit matrix. There are
	// at most 2|E|/δ high vertices, so the matrix stays compact.
	h := len(highIDs)
	if h >= 3 {
		words := (h + 63) / 64
		rows := make([]uint64, h*words)
		for i, v := range highIDs {
			for _, u := range g.Neighbors(v) {
				if j := highIndex[u]; j >= 0 {
					rows[i*words+int(j)>>6] |= 1 << (uint(j) & 63)
				}
			}
		}
		hacc := sched.NewAccumulator(pool.Workers())
		pool.For(h, 0, func(worker, start, end int) {
			var local uint64
			for i := start; i < end; i++ {
				if pool.Cancelled() {
					break
				}
				ri := rows[i*words : (i+1)*words]
				for j := i + 1; j < h; j++ {
					if ri[j>>6]&(1<<(uint(j)&63)) == 0 {
						continue
					}
					rj := rows[j*words : (j+1)*words]
					// Common high neighbours k > j close triangles
					// (i < j < k counts each once).
					for w := j >> 6; w < words; w++ {
						x := ri[w] & rj[w]
						if w == j>>6 {
							x &= ^uint64(0) << ((uint(j) & 63) + 1)
						}
						local += uint64(bits.OnesCount64(x))
					}
				}
			}
			hacc.Add(worker, local)
		})
		count += hacc.Sum()
	}
	return count
}

// MatrixTC counts triangles through the linear-algebra identity
// trace(A^3)/6 = Σ_{(u,v) ∈ E} |N(u) ∩ N(v)| / 6, evaluated with a
// dense adjacency bit matrix and word-parallel row ANDs — the
// GraphBLAS-style formulation of Azad et al. [8]. Memory is
// |V|^2/8 bytes, so it is restricted to |V| <= 1<<15; larger inputs
// panic rather than silently allocating gigabytes.
func MatrixTC(g *graph.Graph, pool *sched.Pool) uint64 {
	n := g.NumVertices()
	if n > 1<<15 {
		panic("baseline: MatrixTC requires |V| <= 32768")
	}
	if n == 0 {
		return 0
	}
	words := (n + 63) / 64
	rows := make([]uint64, n*words)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			rows[v*words+int(u)>>6] |= 1 << (uint(u) & 63)
		}
	}
	acc := sched.NewAccumulator(pool.Workers())
	pool.For(n, 0, func(worker, start, end int) {
		var local uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			rv := rows[v*words : (v+1)*words]
			for _, u := range g.Neighbors(uint32(v)) {
				if u >= uint32(v) {
					break // each undirected edge once
				}
				ru := rows[int(u)*words : (int(u)+1)*words]
				for w := 0; w < words; w++ {
					local += uint64(bits.OnesCount64(rv[w] & ru[w]))
				}
			}
		}
		acc.Add(worker, local)
	})
	// Each triangle is seen at 3 edges, each contributing its third
	// vertex once.
	return acc.Sum() / 3
}
