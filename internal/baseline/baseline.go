// Package baseline implements the comparator triangle-counting
// algorithms the paper evaluates LOTUS against (§5.1.4), re-expressed
// on this repository's substrate:
//
//   - NodeIterator — enumerate neighbour pairs per vertex (§2.2).
//   - EdgeIterator — intersect the endpoints of every edge (§2.2);
//     this is the GraphGrind TC kernel.
//   - Forward — Algorithm 1: degree ordering + N^< intersection with
//     merge join; this is the GAP kernel.
//   - Forward variants with binary-search and hash intersection
//     (§6.3 improvements).
//   - GBBS — Forward with the intersection work parallelized over
//     oriented edges rather than vertices.
//   - BBTC — block-based 2-D partitioned counting for load balance.
//
// Every function counts each triangle exactly once and returns the
// same total; cross-algorithm agreement is enforced by tests.
package baseline

import (
	"time"

	"lotustc/internal/graph"
	"lotustc/internal/intersect"
	"lotustc/internal/obs"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
)

// Kernel selects the set-intersection strategy for Forward.
type Kernel int

const (
	// KernelMerge is linear merge join (GAP's choice).
	KernelMerge Kernel = iota
	// KernelBinary is monotone binary search of the shorter list in
	// the longer ([31]).
	KernelBinary
	// KernelHash probes a hash set built from the shorter list
	// (Forward-hashed of Schank & Wagner).
	KernelHash
	// KernelGalloping is exponential search, best under extreme
	// length skew.
	KernelGalloping
)

// String names the kernel for reports.
func (k Kernel) String() string {
	switch k {
	case KernelMerge:
		return "merge"
	case KernelBinary:
		return "binary"
	case KernelHash:
		return "hash"
	case KernelGalloping:
		return "galloping"
	}
	return "unknown"
}

// prepareForward applies degree ordering and orientation, the
// preprocessing every Forward-family baseline performs.
func prepareForward(g *graph.Graph) *graph.Graph {
	ra := reorder.DegreeOrder(g)
	return g.Relabel(ra).Orient()
}

// Forward counts triangles with Algorithm 1: degree ordering, then
// for every v and u ∈ N^<_v accumulate |N^<_v ∩ N^<_u|. End-to-end:
// includes its own preprocessing.
func Forward(g *graph.Graph, pool *sched.Pool, kernel Kernel) uint64 {
	return ForwardWithMetrics(g, pool, kernel, nil)
}

// ForwardWithMetrics is Forward with observability: when m is non-nil
// it records baseline.preprocess.ns, baseline.oriented_edges,
// baseline.count.ns and baseline.intersections. Counters accumulate
// worker-locally and publish in bulk, so a nil m costs nothing in the
// hot loop.
func ForwardWithMetrics(g *graph.Graph, pool *sched.Pool, kernel Kernel, m *obs.Metrics) uint64 {
	t0 := time.Now()
	og := prepareForward(g)
	m.AddDuration("baseline.preprocess.ns", time.Since(t0))
	m.Set("baseline.oriented_edges", g.NumEdges())
	return CountOrientedWithMetrics(og, pool, kernel, m)
}

// CountOriented counts triangles on an already-oriented graph with
// the chosen kernel, parallelized over vertices.
func CountOriented(og *graph.Graph, pool *sched.Pool, kernel Kernel) uint64 {
	return CountOrientedWithMetrics(og, pool, kernel, nil)
}

// CountOrientedWithMetrics is CountOriented recording
// baseline.count.ns and baseline.intersections into m (nil disables).
func CountOrientedWithMetrics(og *graph.Graph, pool *sched.Pool, kernel Kernel, m *obs.Metrics) uint64 {
	t0 := time.Now()
	n := og.NumVertices()
	acc := sched.NewAccumulator(pool.Workers())
	inter := sched.NewAccumulator(pool.Workers())
	// Per-worker hash sets sized to the max degree, reused across
	// intersections (allocation-free hot loop).
	var hashes []*intersect.HashSet
	if kernel == KernelHash {
		maxd := og.MaxDegree()
		hashes = make([]*intersect.HashSet, pool.Workers())
		for i := range hashes {
			hashes[i] = intersect.NewHashSet(maxd + 1)
		}
	}
	pool.For(n, 0, func(worker, start, end int) {
		var local, sets uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			nv := og.Neighbors(uint32(v))
			sets += uint64(len(nv))
			for _, u := range nv {
				nu := og.Neighbors(u)
				switch kernel {
				case KernelMerge:
					local += intersect.Merge(nv, nu)
				case KernelBinary:
					local += intersect.Binary(nv, nu)
				case KernelGalloping:
					local += intersect.Galloping(nv, nu)
				case KernelHash:
					a, b := nv, nu
					if len(a) > len(b) {
						a, b = b, a
					}
					local += intersect.Hash(hashes[worker], a, b)
				}
			}
		}
		acc.Add(worker, local)
		inter.Add(worker, sets)
	})
	m.Add("baseline.intersections", int64(inter.Sum()))
	m.AddDuration("baseline.count.ns", time.Since(t0))
	return acc.Sum()
}

// ForwardDegeneracy is the Forward algorithm over a degeneracy
// (k-core) ordering instead of degree ordering: every forward list is
// bounded by the graph's degeneracy, giving the best worst-case
// intersection sizes at the cost of a sequential peeling pass.
func ForwardDegeneracy(g *graph.Graph, pool *sched.Pool, kernel Kernel) uint64 {
	ra, _ := reorder.DegeneracyOrder(g)
	og := g.Relabel(ra).Orient()
	return CountOriented(og, pool, kernel)
}

// NodeIterator counts triangles by enumerating each pair of
// neighbours of every vertex and testing adjacency with binary
// search. Each triangle is found at all three of its vertices, so the
// total is divided by 3.
func NodeIterator(g *graph.Graph, pool *sched.Pool) uint64 {
	n := g.NumVertices()
	acc := sched.NewAccumulator(pool.Workers())
	pool.For(n, 0, func(worker, start, end int) {
		var local uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			nv := g.Neighbors(uint32(v))
			for i := 0; i < len(nv); i++ {
				for j := i + 1; j < len(nv); j++ {
					if g.HasEdge(nv[i], nv[j]) {
						local++
					}
				}
			}
		}
		acc.Add(worker, local)
	})
	return acc.Sum() / 3
}

// EdgeIterator counts triangles by intersecting the full neighbour
// lists of the two endpoints of every undirected edge (the
// GraphGrind strategy). Each triangle is seen from its three edges,
// with each intersection finding it once; iterating v's list only
// over u < v visits each undirected edge once, and the total is
// divided by 3... more precisely every triangle {a,b,c} is counted at
// edges (a,b),(a,c),(b,c), once each, so the sum is 3T.
func EdgeIterator(g *graph.Graph, pool *sched.Pool) uint64 {
	n := g.NumVertices()
	acc := sched.NewAccumulator(pool.Workers())
	pool.For(n, 0, func(worker, start, end int) {
		var local uint64
		for v := start; v < end; v++ {
			if pool.Cancelled() {
				break
			}
			nv := g.Neighbors(uint32(v))
			for _, u := range nv {
				if u >= uint32(v) {
					break // each undirected edge once (lists sorted)
				}
				local += intersect.Merge(nv, g.Neighbors(u))
			}
		}
		acc.Add(worker, local)
	})
	return acc.Sum() / 3
}

// GBBS counts triangles in the style of Dhulipala et al. [26]: the
// Forward algorithm with the intersection work distributed over
// oriented edges (flattened), so a single huge vertex cannot
// serialize a worker. Includes degree-ordering preprocessing.
func GBBS(g *graph.Graph, pool *sched.Pool) uint64 {
	og := prepareForward(g)
	offsets := og.Offsets()
	nbrs := og.RawNeighbors()
	m := len(nbrs)
	acc := sched.NewAccumulator(pool.Workers())
	// Map flattened edge index -> source vertex with a scan per
	// chunk: workers claim edge ranges, locate the owning vertex by
	// binary search once, then advance.
	pool.For(m, 4096, func(worker, start, end int) {
		var local uint64
		v := searchOffsets(offsets, int64(start))
		for e := start; e < end; e++ {
			for int64(e) >= offsets[v+1] {
				v++
			}
			u := nbrs[e]
			local += intersect.Merge(og.Neighbors(uint32(v)), og.Neighbors(u))
		}
		acc.Add(worker, local)
	})
	return acc.Sum()
}

// searchOffsets returns the vertex whose edge range contains flat
// index e.
func searchOffsets(offsets []int64, e int64) int {
	lo, hi := 0, len(offsets)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if offsets[mid+1] <= e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BBTC counts triangles with block-based 2-D partitioning in the
// spirit of Yasar et al. [76]: the oriented edges are partitioned by
// (block of v, block of u) into blocks^2 independent tasks that are
// dynamically scheduled. Each oriented edge belongs to exactly one
// task, so each triangle is counted exactly once.
func BBTC(g *graph.Graph, pool *sched.Pool, blocks int) uint64 {
	if blocks < 1 {
		blocks = 2 * pool.Workers()
	}
	og := prepareForward(g)
	n := og.NumVertices()
	if n == 0 {
		return 0
	}
	blockOf := func(v uint32) int { return int(uint64(v) * uint64(blocks) / uint64(n)) }
	blockStart := func(b int) uint32 { return uint32((uint64(b)*uint64(n) + uint64(blocks) - 1) / uint64(blocks)) }
	acc := sched.NewAccumulator(pool.Workers())
	pool.RunTasks(blocks*blocks, func(worker, task int) {
		bi := task / blocks
		bj := task % blocks
		var local uint64
		for v := blockStart(bi); v < blockStart(bi+1) && int(v) < n && !pool.Cancelled(); v++ {
			nv := og.Neighbors(v)
			for _, u := range nv {
				if blockOf(u) != bj {
					continue
				}
				local += intersect.Merge(nv, og.Neighbors(u))
			}
		}
		acc.Add(worker, local)
	})
	return acc.Sum()
}

// BruteForce counts triangles by testing all vertex triples through
// adjacency queries. O(|V|·d²) via neighbour pairs; usable only on
// tiny graphs and intended as the independent test oracle.
func BruteForce(g *graph.Graph) uint64 {
	var count uint64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		nv := g.Neighbors(uint32(v))
		for i := 0; i < len(nv); i++ {
			if nv[i] >= uint32(v) {
				break
			}
			for j := i + 1; j < len(nv); j++ {
				if nv[j] >= uint32(v) {
					break
				}
				if g.HasEdge(nv[i], nv[j]) {
					count++
				}
			}
		}
	}
	return count
}
