package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotustc/internal/gen"
	"lotustc/internal/graph"
)

func classicAlgorithms(g *graph.Graph) map[string]uint64 {
	return map[string]uint64{
		"new-vertex-listing": NewVertexListing(g, pool),
		"node-iterator-core": NodeIteratorCore(g, pool),
		"ayz-auto":           AYZ(g, pool, 0),
		"ayz-delta2":         AYZ(g, pool, 2),
		"ayz-delta-huge":     AYZ(g, pool, 1<<30),
		"matrix":             MatrixTC(g, pool),
	}
}

func TestMatrixTCGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized matrix")
		}
	}()
	huge := graph.FromEdges(nil, graph.BuildOptions{NumVertices: 1<<15 + 1})
	MatrixTC(huge, pool)
}

func TestClassicKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"empty", graph.FromEdges(nil, graph.BuildOptions{}), 0},
		{"triangle", gen.Complete(3), 1},
		{"K6", gen.Complete(6), 20},
		{"K10", gen.Complete(10), 120},
		{"star", gen.Star(30), 0},
		{"ring", gen.Ring(30), 0},
		{"bipartite", gen.CompleteBipartite(4, 6), 0},
		{"planted", gen.PlantedTriangles(8, 2), 8},
		{"hubspokes", gen.HubAndSpokes(5, 30, 2, 1), 10 + 30},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for name, got := range classicAlgorithms(c.g) {
				if got != c.want {
					t.Errorf("%s = %d, want %d", name, got, c.want)
				}
			}
		})
	}
}

func TestClassicAgreeProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		var edges []graph.Edge
		for i := 0; i < rng.Intn(4*n); i++ {
			edges = append(edges, graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := graph.FromEdges(edges, graph.BuildOptions{NumVertices: n})
		want := BruteForce(g)
		for name, got := range classicAlgorithms(g) {
			if got != want {
				t.Logf("seed %d: %s = %d, want %d", seed, name, got, want)
				return false
			}
		}
		// Random delta must also work.
		if got := AYZ(g, pool, 1+rng.Intn(20)); got != want {
			t.Logf("seed %d: ayz random delta = %d, want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClassicOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":    gen.RMAT(gen.DefaultRMAT(9, 8, 6)),
		"ba":      gen.BarabasiAlbert(500, 3, 7),
		"chunglu": gen.ChungLu(gen.ChungLuParams{N: 512, M: 3000, Gamma: 2.1, Seed: 8}),
	}
	for gname, g := range graphs {
		want := Forward(g, pool, KernelMerge)
		for name, got := range classicAlgorithms(g) {
			if got != want {
				t.Errorf("%s/%s = %d, want %d", gname, name, got, want)
			}
		}
	}
}

func TestAYZAllHighAllLow(t *testing.T) {
	g := gen.Complete(12) // every vertex degree 11
	want := uint64(220)
	// delta 0 after auto-pick; delta 1 makes everything high; huge
	// delta makes everything low.
	if got := AYZ(g, pool, 1); got != want {
		t.Fatalf("all-high AYZ = %d, want %d", got, want)
	}
	if got := AYZ(g, pool, 100); got != want {
		t.Fatalf("all-low AYZ = %d, want %d", got, want)
	}
}

func BenchmarkClassic(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	b.Run("new-vertex-listing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchClassicSink += NewVertexListing(g, pool)
		}
	})
	b.Run("node-iterator-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchClassicSink += NodeIteratorCore(g, pool)
		}
	})
	b.Run("ayz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchClassicSink += AYZ(g, pool, 0)
		}
	})
}

var benchClassicSink uint64
