# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check race bench verify experiments fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The pre-commit gate: static analysis plus the race-enabled short
# test subset (large cancellation graphs shrink under -short).
check:
	$(GO) vet ./...
	$(GO) test -race -short ./...

race:
	$(GO) test -race ./internal/... .

# One benchmark per paper table/figure (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem .

# Randomized cross-validation of every algorithm and extension.
verify:
	$(GO) run ./cmd/lotus-verify -rounds 50

# Regenerate every table and figure (writes nothing; see EXPERIMENTS.md
# for an archived run).
experiments:
	$(GO) run ./cmd/lotus-bench -all -scale 15 -edgefactor 16

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadEdgeList -fuzztime=10s ./internal/graph
	$(GO) test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=10s ./internal/graph
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/compress

clean:
	$(GO) clean ./...
