# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check race bench bench-report verify serve-smoke chaos experiments fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# The pre-commit gate: static analysis, the race-enabled short test
# subset (large cancellation graphs shrink under -short), and a full
# race-enabled pass over the observability and I/O-hardening surface
# (concurrent counter publication and the corrupt-input corpus are
# exactly where races and panics would hide).
check:
	$(GO) vet ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/obs/
	$(GO) test -race ./internal/serve/
	$(GO) test -race ./internal/faults/
	$(GO) test -race ./internal/approx/
	$(GO) test -race -run 'TestReadLotusGraph|TestLotusGraphRoundTrip|TestStreaming' ./internal/core/
	$(GO) test -race -run 'TestShardEquivalence' ./internal/shard/
	# Auto-tuner surface: the probe's parallel reductions, the policy,
	# and the cover-edge kernel's parallel sweep all race-tested in
	# full (they are small packages; the engine's auto kernel rides in
	# the -short pass above).
	$(GO) test -race ./internal/tune/ ./internal/stats/ ./internal/coveredge/
	# Allocation gates run without -race (instrumentation changes the
	# profile they assert on): zero allocs/op on the warm /v1/count hit,
	# pooled-arena rehydration, slab reuse in DecodeInto. The race pass
	# over ./internal/serve/ above already hammers the same pool paths
	# concurrently.
	$(GO) test -run 'ZeroAlloc|Rehydration|ArenaIsolation|DecodeIntoReusesArena' ./internal/serve/ ./internal/compress/

race:
	$(GO) test -race ./internal/... .

# One benchmark per paper table/figure (see bench_test.go).
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable comparator sweep with full metrics; BENCH_PR10.json
# is the artifact future PRs diff for perf trajectories (BENCH_PR2,
# BENCH_PR5, BENCH_PR6, BENCH_PR7 and BENCH_PR9 are the earlier
# snapshots). Scale 15 so the phase-1 kernel ablation rows
# (lotus/phase1=*, lotus/intersect=*), the sharded p=1/2/4 sweep
# (lotus-sharded/p=*), the streaming-ingest throughput rows
# (stream-ingest/exact vs approx), the serve-cache residency rows
# (serve-cache/raw vs compressed) and the new auto-vs-fixed tuner
# sweep (tune/auto vs tune/lotus, tune/cover-edge,
# tune/degree-partition, best-of-3 per row) measure real work.
bench-report:
	$(GO) run ./cmd/lotus-bench -report json -scale 15 -o BENCH_PR10.json

# Randomized cross-validation of every algorithm and extension.
verify:
	$(GO) run ./cmd/lotus-verify -rounds 50

# Boot lotus-serve on a loopback port, count a scale-12 R-MAT graph
# twice, and assert 200 + nonzero triangles + a >= 10x result-cache
# speedup on the repeat query.
serve-smoke:
	$(GO) run ./cmd/lotus-serve -smoke -smoke-scale 12

# Kill/restart + fault-injection chaos suite over the durable session
# layer, race-enabled: exact sessions must recover bit-identically,
# approx sessions draw-for-draw, torn WAL tails clip cleanly, and
# every registered fault point degrades without corrupting state.
chaos:
	$(GO) test -race -run 'TestChaos|TestRecovering|TestShutdownCancels|TestAdmitReleases|TestWAL' -v ./internal/serve/

# Regenerate every table and figure (writes nothing; see EXPERIMENTS.md
# for an archived run).
experiments:
	$(GO) run ./cmd/lotus-bench -all -scale 15 -edgefactor 16

# Short fuzzing pass over the parsers.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReadEdgeList -fuzztime=10s ./internal/graph
	$(GO) test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=10s ./internal/graph
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/compress
	$(GO) test -run=^$$ -fuzz=FuzzReadLotusGraph -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzIntersectAgreement -fuzztime=10s ./internal/intersect
	$(GO) test -run=^$$ -fuzz=FuzzPartition -fuzztime=10s ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzTriest$$ -fuzztime=10s ./internal/approx
	$(GO) test -run=^$$ -fuzz=FuzzWALDecode -fuzztime=10s ./internal/serve

clean:
	$(GO) clean ./...
