// Package lotustc is a Go reproduction of "LOTUS: Locality Optimizing
// Triangle Counting" (Koohi Esfahani, Kilpatrick, Vandierendonck,
// PPoPP 2022). It provides:
//
//   - LOTUS itself: a structure-aware triangle counter for power-law
//     graphs that separates hub from non-hub edges into bespoke,
//     cache-friendly structures (H2H bit array, 16-bit HE sub-graph,
//     32-bit NHE sub-graph) and counts the four triangle classes
//     (HHH/HHN/HNN/NNN) in three locality-optimized phases.
//   - The baselines the paper compares against (Forward/GAP,
//     edge-iterator/GraphGrind, GBBS-style, BBTC-style, node
//     iterator).
//   - Deterministic graph generators standing in for the paper's
//     datasets, graph I/O, topology statistics, and the paper's two
//     future-work extensions (recursive splitting, streaming hub TC).
//
// Quick start:
//
//	g := lotustc.RMAT(18, 16, 42)
//	res, err := lotustc.Count(g, lotustc.Options{Algorithm: lotustc.AlgoLotus})
//	fmt.Println(res.Triangles)
package lotustc

import (
	"context"
	"time"

	"lotustc/internal/engine"
	"lotustc/internal/graph"
	"lotustc/internal/obs"
)

// Graph is the CSX graph type. Build one with FromEdges, a generator,
// or LoadGraph.
type Graph = graph.Graph

// Edge is one undirected edge.
type Edge = graph.Edge

// FromEdges builds a simple symmetric graph from an edge list:
// duplicates collapse, self loops are dropped. numVertices pins |V|
// (0 infers it from the largest ID).
func FromEdges(edges []Edge, numVertices int) *Graph {
	return graph.FromEdges(edges, graph.BuildOptions{NumVertices: numVertices})
}

// LoadGraph reads a binary graph file written by SaveGraph.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes g to a binary graph file.
func SaveGraph(g *Graph, path string) error { return g.SaveFile(path) }

// Algorithm names a triangle counting algorithm.
type Algorithm string

// The available algorithms. AlgoLotus is the paper's contribution;
// the others are the §5.1.4 comparators.
const (
	AlgoLotus          Algorithm = "lotus"
	AlgoLotusRecursive Algorithm = "lotus-recursive"
	// AlgoLotusSharded partitions the relabeled ID space into a
	// Shards-way grid, builds one LOTUS structure per block, and counts
	// by block triple; totals and classes match AlgoLotus exactly.
	AlgoLotusSharded Algorithm = "lotus-sharded"
	AlgoForward        Algorithm = "forward"        // GAP-style, merge join
	AlgoForwardBinary  Algorithm = "forward-binary" // binary-search intersection
	AlgoForwardHash    Algorithm = "forward-hash"   // Forward-hashed
	AlgoEdgeIterator   Algorithm = "edge-iterator"  // GraphGrind-style
	AlgoNodeIterator   Algorithm = "node-iterator"
	AlgoGBBS           Algorithm = "gbbs" // edge-parallel Forward
	AlgoBBTC           Algorithm = "bbtc" // block-based 2-D partitioned
	// The classic algorithms §6.1 surveys.
	AlgoNewVertexListing Algorithm = "new-vertex-listing" // Latapy bitmap
	AlgoNodeIteratorCore Algorithm = "node-iterator-core" // Schank-Wagner
	AlgoAYZ              Algorithm = "ayz"                // Alon-Yuster-Zwick
	// AlgoForwardDegeneracy orients by k-core peeling order,
	// bounding every forward list by the graph's degeneracy.
	AlgoForwardDegeneracy Algorithm = "forward-degeneracy"
	// AlgoCoverEdge counts by BFS-level cover edges (Bader et al.):
	// no hub structures, strongest on sparse flat graphs (meshes,
	// road networks) where LOTUS's relabeling buys nothing.
	AlgoCoverEdge Algorithm = "cover-edge"
	// AlgoDegreePartition is the degree-partitioned LOTUS variant
	// (Kolountzakis-style classes on the shard grid); totals and
	// classes match AlgoLotus exactly.
	AlgoDegreePartition Algorithm = "degree-partition"
	// AlgoAuto probes the graph's structure (degree skew, hub edge
	// coverage, H2H density) and routes to the algorithm the shape
	// favors; the choice lands in Result.Decision.
	AlgoAuto Algorithm = "auto"
)

// Algorithms lists every available algorithm, in the engine's
// registration order. Algorithms registered with engine.Register —
// including third-party kernels — appear here automatically.
func Algorithms() []Algorithm {
	names := engine.Algorithms()
	algos := make([]Algorithm, len(names))
	for i, n := range names {
		algos[i] = Algorithm(n)
	}
	return algos
}

// Options configure Count.
type Options struct {
	// Algorithm defaults to AlgoLotus.
	Algorithm Algorithm
	// Workers bounds parallelism; 0 uses GOMAXPROCS.
	Workers int
	// HubCount overrides the LOTUS hub count (0 = adaptive:
	// min(64K, |V|/4), the paper's 64K at scale).
	HubCount int
	// FrontFraction overrides the §4.3.1 relabeling front block
	// (0 = the paper's 10%).
	FrontFraction float64
	// TileThreshold overrides the squared-edge-tiling degree cutoff
	// (0 = the paper's 512).
	TileThreshold int
	// EdgeBalancedTiling switches phase 1 to the edge-balanced
	// partitioner the paper compares against in Table 9.
	EdgeBalancedTiling bool
	// MaxDepth bounds AlgoLotusRecursive (0 = 2 levels).
	MaxDepth int
	// HNNBlocks > 1 enables the §7 blocked HNN phase with that many
	// ID-range blocks (0/1 = unblocked).
	HNNBlocks int
	// WorkStealing schedules phase-1 tiles on work-stealing deques
	// (the paper's runtime model) instead of the shared counter.
	WorkStealing bool
	// Shards is the grid dimension p for AlgoLotusSharded
	// (0 = the default 2; 1 = a single block). Other algorithms
	// ignore it.
	Shards int
	// TuneAlgorithm pins the algorithm AlgoAuto routes to, for
	// ablation (e.g. AlgoLotus to measure what the tuner saved).
	// Other algorithms ignore it.
	TuneAlgorithm Algorithm
	// Timeout bounds the whole count (0 = none). On expiry the count
	// aborts cooperatively and Count returns
	// context.DeadlineExceeded.
	Timeout time.Duration
	// CollectMetrics populates Result.Metrics with the per-phase
	// counter snapshot (steal counts, structure touch counts, ...).
	// Off by default; the counting hot paths pay nothing when off.
	CollectMetrics bool
}

// Result reports one count. The phase fields are populated for the
// LOTUS algorithms only.
type Result struct {
	Algorithm Algorithm
	Triangles uint64
	// Elapsed is the end-to-end time including preprocessing, the
	// Table 5 accounting.
	Elapsed time.Duration
	// Preprocess is the LOTUS graph construction time (Fig 6).
	Preprocess time.Duration
	// Phase wall times (Fig 6).
	Phase1, HNNPhase, NNNPhase time.Duration
	// CountPhase is the unified counting wall time reported by
	// AlgoLotusSharded, whose block-triple sweep does not split into
	// the three flat phases.
	CountPhase time.Duration
	// Triangle classes (Fig 7).
	HHH, HHN, HNN, NNN uint64
	// RecursionDepth reports levels used by AlgoLotusRecursive.
	RecursionDepth int
	// Metrics is the flat observability snapshot collected when
	// Options.CollectMetrics was set, nil otherwise. Keys are dotted
	// counter names ("phase1.steals", "lotus.h2h_bits", ...); the full
	// catalogue is documented in DESIGN.md.
	Metrics map[string]int64
	// Decision is the structural auto-tuner's routing record — the
	// chosen algorithm, the policy reason, and every probe stat the
	// decision read. Populated by AlgoAuto only.
	Decision *TuneDecision
}

// TuneDecision is the auto-tuner's routing record (see AlgoAuto).
type TuneDecision = obs.TuneDecision

// HubTriangles returns triangles containing at least one hub
// (meaningful for the LOTUS algorithms).
func (r *Result) HubTriangles() uint64 { return r.HHH + r.HHN + r.HNN }

// TCRate returns the end-to-end triangle counting rate in edges per
// second, the metric of Fig 1.
func (r *Result) TCRate(edges int64) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(edges) / r.Elapsed.Seconds()
}

// Count counts the triangles of g with the selected algorithm. The
// graph must be symmetric (as built by FromEdges or the generators).
// It is CountContext with a background context; use Options.Timeout
// or CountContext directly to bound the run.
func Count(g *Graph, opt Options) (*Result, error) {
	return CountContext(context.Background(), g, opt)
}

// CountContext is Count with cooperative cancellation: when ctx is
// cancelled (or Options.Timeout expires) the counting kernels stop at
// their next scheduling boundary and the context's error is returned.
// A cancelled count never returns a partial Result.
func CountContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	rep, err := engine.Run(ctx, g, engine.Spec{
		Algorithm:      string(opt.Algorithm),
		Workers:        opt.Workers,
		Timeout:        opt.Timeout,
		CollectMetrics: opt.CollectMetrics,
		Params: engine.Params{
			HubCount:           opt.HubCount,
			FrontFraction:      opt.FrontFraction,
			TileThreshold:      opt.TileThreshold,
			EdgeBalancedTiling: opt.EdgeBalancedTiling,
			MaxDepth:           opt.MaxDepth,
			HNNBlocks:          opt.HNNBlocks,
			WorkStealing:       opt.WorkStealing,
			Shards:             opt.Shards,
			TuneAlgorithm:      string(opt.TuneAlgorithm),
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:      Algorithm(rep.Algorithm),
		Triangles:      rep.Triangles,
		Elapsed:        rep.Elapsed,
		Preprocess:     rep.Phase(engine.PhasePreprocess),
		Phase1:         rep.Phase(engine.PhaseHub),
		HNNPhase:       rep.Phase(engine.PhaseHNN),
		NNNPhase:       rep.Phase(engine.PhaseNNN),
		CountPhase:     rep.Phase(engine.PhaseCount),
		HHH:            rep.HHH,
		HHN:            rep.HHN,
		HNN:            rep.HNN,
		NNN:            rep.NNN,
		RecursionDepth: rep.RecursionDepth,
		Metrics:        rep.Metrics,
		Decision:       rep.Decision,
	}, nil
}
