package lotustc

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCountAllAlgorithmsAgree(t *testing.T) {
	g := RMAT(10, 8, 42)
	want, err := Count(g, Options{Algorithm: AlgoForward})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := Count(g, Options{Algorithm: alg, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Triangles != want.Triangles {
			t.Errorf("%s = %d, want %d", alg, res.Triangles, want.Triangles)
		}
		if res.Algorithm != alg {
			t.Errorf("%s: result labeled %s", alg, res.Algorithm)
		}
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed not measured", alg)
		}
	}
}

func TestCountDefaultsToLotus(t *testing.T) {
	g := Complete(16)
	res, err := Count(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgoLotus {
		t.Fatalf("default algorithm = %s", res.Algorithm)
	}
	if res.Triangles != 560 {
		t.Fatalf("K16 = %d, want 560", res.Triangles)
	}
	if res.HHH+res.HHN+res.HNN+res.NNN != res.Triangles {
		t.Fatal("class sum mismatch")
	}
	if res.Preprocess <= 0 || res.Phase1 <= 0 {
		t.Fatal("lotus phase times missing")
	}
}

func TestCountUnknownAlgorithm(t *testing.T) {
	if _, err := Count(Complete(4), Options{Algorithm: "nope"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCountRecursiveResult(t *testing.T) {
	g := RMAT(11, 8, 7)
	flat, _ := Count(g, Options{Algorithm: AlgoLotus, HubCount: 64})
	rec, err := Count(g, Options{Algorithm: AlgoLotusRecursive, HubCount: 64, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Triangles != flat.Triangles {
		t.Fatalf("recursive %d != flat %d", rec.Triangles, flat.Triangles)
	}
	if rec.RecursionDepth < 1 {
		t.Fatal("depth not reported")
	}
	if rec.HHH+rec.HHN+rec.HNN+rec.NNN != rec.Triangles {
		t.Fatal("recursive class sum mismatch")
	}
}

func TestEdgeBalancedTilingOption(t *testing.T) {
	g := RMAT(10, 8, 3)
	a, _ := Count(g, Options{Algorithm: AlgoLotus})
	b, _ := Count(g, Options{Algorithm: AlgoLotus, EdgeBalancedTiling: true, TileThreshold: 4})
	if a.Triangles != b.Triangles {
		t.Fatalf("tiling policies disagree: %d vs %d", a.Triangles, b.Triangles)
	}
	c, _ := Count(g, Options{Algorithm: AlgoLotus, HNNBlocks: 8})
	if c.Triangles != a.Triangles {
		t.Fatalf("blocked HNN disagrees: %d vs %d", c.Triangles, a.Triangles)
	}
	d, _ := Count(g, Options{Algorithm: AlgoLotus, WorkStealing: true, TileThreshold: 4})
	if d.Triangles != a.Triangles {
		t.Fatalf("work stealing disagrees: %d vs %d", d.Triangles, a.Triangles)
	}
}

func TestGraphRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.lotg")
	g := RMAT(8, 8, 1)
	if err := SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := Count(g, Options{})
	r2, _ := Count(g2, Options{})
	if r1.Triangles != r2.Triangles {
		t.Fatal("round-tripped graph counts differently")
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
	_ = os.Remove(path)
}

func TestFromEdges(t *testing.T) {
	g := FromEdges([]Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, 0)
	res, _ := Count(g, Options{})
	if res.Triangles != 1 {
		t.Fatalf("triangle = %d", res.Triangles)
	}
	if FromEdges(nil, 7).NumVertices() != 7 {
		t.Fatal("pinned vertex count ignored")
	}
}

func TestPerVertexTriangles(t *testing.T) {
	// K4: every vertex is in C(3,2)=3 triangles.
	tri := PerVertexTriangles(Complete(4), 2)
	for v, c := range tri {
		if c != 3 {
			t.Fatalf("K4 vertex %d in %d triangles, want 3", v, c)
		}
	}
	// Planted: each triangle vertex in exactly 1; padding in 0.
	tri = PerVertexTriangles(PlantedTriangles(3, 2), 2)
	for v := 0; v < 9; v++ {
		if tri[v] != 1 {
			t.Fatalf("planted vertex %d count %d", v, tri[v])
		}
	}
	for v := 9; v < 11; v++ {
		if tri[v] != 0 {
			t.Fatalf("padding vertex %d count %d", v, tri[v])
		}
	}
}

func TestPerVertexSumsToThreeT(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))})
		}
		g := FromEdges(edges, n)
		tri := PerVertexTriangles(g, 4)
		var sum uint64
		for _, c := range tri {
			sum += c
		}
		res, _ := Count(g, Options{})
		return sum == 3*res.Triangles
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	lcc := LocalClusteringCoefficients(Complete(5), 2)
	for v, c := range lcc {
		if math.Abs(c-1) > 1e-9 {
			t.Fatalf("K5 lcc[%d] = %v, want 1", v, c)
		}
	}
	if g := GlobalClusteringCoefficient(Complete(5), 2); math.Abs(g-1) > 1e-9 {
		t.Fatalf("K5 transitivity = %v, want 1", g)
	}
	if g := GlobalClusteringCoefficient(Star(10), 2); g != 0 {
		t.Fatalf("star transitivity = %v, want 0", g)
	}
	if lccStar := LocalClusteringCoefficients(Star(5), 1); lccStar[0] != 0 {
		t.Fatal("star center lcc should be 0")
	}
}

func TestTopDegreeVertices(t *testing.T) {
	g := Star(10)
	top := TopDegreeVertices(g, 3)
	if top[0] != 0 {
		t.Fatalf("star center not top: %v", top)
	}
	if len(TopDegreeVertices(g, 100)) != 10 {
		t.Fatal("k > n should clamp")
	}
}

func TestStreamingFacade(t *testing.T) {
	g := RMAT(8, 8, 5)
	hubs := TopDegreeVertices(g, 8)
	sc, err := NewStreamingCounter(g.NumVertices(), hubs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		sc.AddEdge(e.U, e.V)
	}
	if sc.HubTriangles() == 0 {
		t.Fatal("no hub triangles streamed on RMAT graph")
	}
	full, _ := Count(g, Options{})
	if sc.HubTriangles() > full.Triangles {
		t.Fatal("hub triangles exceed total")
	}
}

func TestStatsFacade(t *testing.T) {
	s := Stats(RMAT(10, 8, 2))
	if s.Vertices != 1<<10 || s.Edges == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Table1.TotalHubPct <= 0 {
		t.Fatal("table1 not computed")
	}
	if s.Gini <= 0 {
		t.Fatal("gini not computed")
	}
}

func TestTCRate(t *testing.T) {
	r := &Result{Elapsed: 2e9} // 2 s
	if got := r.TCRate(1000); math.Abs(got-500) > 1e-9 {
		t.Fatalf("TCRate = %v, want 500", got)
	}
	if (&Result{}).TCRate(10) != 0 {
		t.Fatal("zero elapsed should yield 0 rate")
	}
}

func TestLotusCounterHandle(t *testing.T) {
	g := RMAT(10, 8, 21)
	c := NewLotusCounter(g, Options{Workers: 2})
	r1 := c.Count()
	r2 := c.Count() // reuse without re-preprocessing
	if r1.Triangles != r2.Triangles {
		t.Fatal("repeat counts differ")
	}
	direct, _ := Count(g, Options{})
	if r1.Triangles != direct.Triangles {
		t.Fatalf("handle %d != direct %d", r1.Triangles, direct.Triangles)
	}
	if c.HubCount() < 1 || c.TopologyBytes() <= 0 {
		t.Fatal("metadata missing")
	}
	// Persistence round trip.
	path := filepath.Join(t.TempDir(), "c.lots")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadLotusCounter(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Count().Triangles != r1.Triangles {
		t.Fatal("restored counter disagrees")
	}
	if _, err := LoadLotusCounter(filepath.Join(t.TempDir(), "nope"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
	// Per-vertex counts in original IDs match the forward-based path.
	a := c.PerVertexTriangles()
	b := PerVertexTriangles(g, 2)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("per-vertex mismatch at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestCountKCliques(t *testing.T) {
	g := Complete(8)
	for k, want := range map[int]uint64{1: 8, 2: 28, 3: 56, 4: 70, 5: 56, 8: 1} {
		lotus, err := CountKCliques(g, k, Options{HubCount: 3})
		if err != nil {
			t.Fatal(err)
		}
		generic, err := CountKCliques(g, k, Options{Algorithm: AlgoForward})
		if err != nil {
			t.Fatal(err)
		}
		if lotus != want || generic != want {
			t.Errorf("k=%d: lotus %d generic %d, want %d", k, lotus, generic, want)
		}
	}
	// k=3 must equal triangle counting.
	rg := RMAT(9, 8, 4)
	tri, _ := Count(rg, Options{})
	k3, _ := CountKCliques(rg, 3, Options{})
	if k3 != tri.Triangles {
		t.Fatalf("k=3 %d != triangles %d", k3, tri.Triangles)
	}
}

func TestGeneratorsFacade(t *testing.T) {
	if ChungLu(100, 400, 2.3, 1).NumVertices() != 100 {
		t.Fatal("ChungLu facade broken")
	}
	if ChungLuCapped(100, 400, 2.3, 0.1, 1).NumVertices() != 100 {
		t.Fatal("ChungLuCapped facade broken")
	}
	if ErdosRenyi(50, 100, 1).NumVertices() != 50 {
		t.Fatal("ER facade broken")
	}
	if Ring(5).NumEdges() != 5 {
		t.Fatal("Ring facade broken")
	}
	if Grid(2, 3).NumVertices() != 6 {
		t.Fatal("Grid facade broken")
	}
	if HubAndSpokes(3, 10, 2, 1).NumVertices() != 13 {
		t.Fatal("HubAndSpokes facade broken")
	}
	res, _ := Count(HubAndSpokes(3, 10, 2, 1), Options{HubCount: 3})
	if res.HubTriangles() != res.Triangles {
		t.Fatal("hub-and-spokes should have only hub triangles")
	}
	sbm := SBM(300, 3, 0.2, 0.01, 2)
	if sbm.NumVertices() != 300 || sbm.NumEdges() == 0 {
		t.Fatal("SBM facade broken")
	}
	if s := Stats(sbm); s.Assortativity < -1 || s.Assortativity > 1 {
		t.Fatalf("assortativity out of range: %v", s.Assortativity)
	}
}
