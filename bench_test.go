// Benchmarks mapping one testing.B target to every table and figure
// of the paper (DESIGN.md per-experiment index). They run on the
// SmallSuite sizes so `go test -bench=.` completes in minutes; use
// cmd/lotus-bench for full-scale runs and printed tables.
package lotustc

import (
	"io"
	"testing"

	"lotustc/internal/approx"
	"lotustc/internal/baseline"
	"lotustc/internal/core"
	"lotustc/internal/gen"
	"lotustc/internal/harness"
	"lotustc/internal/hwsim"
	"lotustc/internal/kclique"
	"lotustc/internal/perf"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
	"lotustc/internal/stats"
)

var benchSuite = harness.SmallSuite()

func benchGraph() *Graph {
	return gen.RMAT(gen.DefaultRMAT(benchSuite.Scale, benchSuite.EdgeFactor, 1))
}

var benchSink uint64

// BenchmarkTable1Stats regenerates the Table 1 topological
// characteristics (1% hub set).
func BenchmarkTable1Stats(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := stats.ComputeTable1(g, 0.01)
		benchSink += t1.TotalTriangles
	}
}

// BenchmarkTable5EndToEnd times each algorithm end-to-end
// (preprocessing included), the Table 5 / Table 6 / Fig 1 measurement.
func BenchmarkTable5EndToEnd(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	b.Run("BBTC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += baseline.BBTC(g, pool, 0)
		}
	})
	b.Run("GraphGrind-edgeiter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += baseline.EdgeIterator(g, pool)
		}
	})
	b.Run("GAP-forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += baseline.Forward(g, pool, baseline.KernelMerge)
		}
	})
	b.Run("GBBS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += baseline.GBBS(g, pool)
		}
	})
	b.Run("Lotus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg := core.Preprocess(g, core.Options{Pool: pool})
			benchSink += lg.Count(pool).Total
		}
	})
}

// BenchmarkFig4Locality replays both kernels through the cache/TLB
// model (Fig 4a LLC misses, Fig 4b DTLB misses).
func BenchmarkFig4Locality(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 1))
	cfg := hwsim.MachineConfig{
		Name: "scaled-skx", L1Bytes: 4 << 10, L2Bytes: 32 << 10, L3Bytes: 256 << 10,
		L1Ways: 8, L2Ways: 8, L3Ways: 11, TLBEntries: 64,
	}
	b.Run("Forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := perf.InstrumentedForward(g, cfg)
			benchSink += e.LLCMisses
		}
	})
	lg := core.Preprocess(g, core.Options{})
	b.Run("Lotus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := perf.InstrumentedLotus(lg, cfg)
			benchSink += e.LLCMisses
		}
	})
}

// BenchmarkFig5Events is the same replay viewed through the Fig 5
// metrics (accesses / instruction proxy / branch misses); kept as a
// separate target so each figure has one bench.
func BenchmarkFig5Events(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 1))
	cfg := hwsim.SkyLakeX()
	for i := 0; i < b.N; i++ {
		fwd, lot := perf.Compare(g, core.Options{}, cfg)
		benchSink += fwd.BranchMisses + lot.BranchMisses
	}
}

// BenchmarkFig6Breakdown measures the LOTUS phases (preprocess /
// HHH+HHN / HNN / NNN) and reports them as custom metrics.
func BenchmarkFig6Breakdown(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	var pre, p1, p2, p3 float64
	for i := 0; i < b.N; i++ {
		lg := core.Preprocess(g, core.Options{Pool: pool})
		res := lg.Count(pool)
		pre += lg.PreprocessTime.Seconds()
		p1 += res.Phase1Time.Seconds()
		p2 += res.HNNTime.Seconds()
		p3 += res.NNNTime.Seconds()
		benchSink += res.Total
	}
	n := float64(b.N)
	b.ReportMetric(pre/n*1e3, "preproc-ms/op")
	b.ReportMetric(p1/n*1e3, "phase1-ms/op")
	b.ReportMetric(p2/n*1e3, "hnn-ms/op")
	b.ReportMetric(p3/n*1e3, "nnn-ms/op")
}

// BenchmarkFig7HubTriangles measures the hub/non-hub triangle split.
func BenchmarkFig7HubTriangles(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	var hubPct float64
	for i := 0; i < b.N; i++ {
		res := lg.Count(pool)
		ts := stats.ComputeTriangleSplit(res)
		hubPct += ts.HubPct
		benchSink += res.Total
	}
	b.ReportMetric(hubPct/float64(b.N), "hub-tri-%")
}

// BenchmarkFig8EdgeSplit measures preprocessing and reports the
// HE/NHE edge split.
func BenchmarkFig8EdgeSplit(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	var hePct float64
	for i := 0; i < b.N; i++ {
		lg := core.Preprocess(g, core.Options{Pool: pool})
		split := stats.ComputeEdgeSplit(lg)
		hePct += split.HEPct
		benchSink += uint64(split.HEEdges)
	}
	b.ReportMetric(hePct/float64(b.N), "he-edges-%")
}

// BenchmarkFig9H2HProfile profiles phase 1's H2H cacheline accesses
// and reports the 90%-coverage line count.
func BenchmarkFig9H2HProfile(b *testing.B) {
	g := benchGraph()
	lg := core.Preprocess(g, core.Options{})
	var l90 float64
	for i := 0; i < b.N; i++ {
		p := perf.H2HProfile(lg)
		l90 += float64(p.LinesForCoverage(0.90))
		benchSink += p.Total()
	}
	b.ReportMetric(l90/float64(b.N), "lines-for-90%")
}

// BenchmarkTable7Sizes measures the topology size computation and
// reports the LOTUS growth percentage.
func BenchmarkTable7Sizes(b *testing.B) {
	g := benchGraph()
	lg := core.Preprocess(g, core.Options{})
	var growth float64
	for i := 0; i < b.N; i++ {
		t7 := stats.ComputeTable7(g, lg)
		growth += t7.GrowthPct
		benchSink += uint64(t7.LotusBytes)
	}
	b.ReportMetric(growth/float64(b.N), "growth-%")
}

// BenchmarkTable8H2H measures the H2H density / zero-cacheline scan.
func BenchmarkTable8H2H(b *testing.B) {
	g := benchGraph()
	lg := core.Preprocess(g, core.Options{})
	var density float64
	for i := 0; i < b.N; i++ {
		t8 := stats.ComputeTable8(lg)
		density += t8.DensityPct
	}
	b.ReportMetric(density/float64(b.N), "density-%")
}

// BenchmarkTable9Tiling times phase 1 under the two partitioners and
// reports their imbalance ratios (the Table 9 comparison).
func BenchmarkTable9Tiling(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	thr := harness.DefaultTileThresholdForSuite(benchSuite)
	b.Run("EdgeBalanced", func(b *testing.B) {
		var imb float64
		for i := 0; i < b.N; i++ {
			res := lg.CountWithOptions(pool, core.CountOptions{Partitioner: core.EdgeBalanced, TileThreshold: thr})
			imb += res.Phase1Load.ImbalanceRatio()
			benchSink += res.Total
		}
		b.ReportMetric(imb/float64(b.N), "max/mean-busy")
	})
	b.Run("SquaredEdgeTiling", func(b *testing.B) {
		var imb float64
		for i := 0; i < b.N; i++ {
			res := lg.CountWithOptions(pool, core.CountOptions{Partitioner: core.SquaredEdgeTiling, TileThreshold: thr})
			imb += res.Phase1Load.ImbalanceRatio()
			benchSink += res.Total
		}
		b.ReportMetric(imb/float64(b.N), "max/mean-busy")
	})
}

// BenchmarkAblationH2HHash compares the H2H bit array against a hash
// set in phase 1 (§5.7).
func BenchmarkAblationH2HHash(b *testing.B) {
	var buf discard
	for i := 0; i < b.N; i++ {
		harness.RunAblationH2H(&buf, harness.Suite{Scale: 10, EdgeFactor: 8})
	}
}

// BenchmarkAblationIntersect compares intersection kernels inside
// Forward (§6.3).
func BenchmarkAblationIntersect(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	for _, k := range []baseline.Kernel{baseline.KernelMerge, baseline.KernelBinary, baseline.KernelHash, baseline.KernelGalloping} {
		b.Run(k.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += baseline.Forward(g, pool, k)
			}
		})
	}
}

// BenchmarkAblationRelabel compares LOTUS relabeling against full
// degree ordering (§4.3.1).
func BenchmarkAblationRelabel(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	b.Run("LotusRelabel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg := core.Preprocess(g, core.Options{Pool: pool})
			benchSink += lg.Count(pool).Total
		}
	})
	b.Run("FullDegreeOrder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gd := g.Relabel(reorder.DegreeOrder(g))
			lg := core.Preprocess(gd, core.Options{Pool: pool})
			benchSink += lg.Count(pool).Total
		}
	})
}

// BenchmarkAblationFusedLoops compares split vs fused HNN/NNN (§4.5).
func BenchmarkAblationFusedLoops(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	b.Run("Split", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += lg.CountWithOptions(pool, core.CountOptions{}).Total
		}
	})
	b.Run("Fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += lg.CountWithOptions(pool, core.CountOptions{FuseHNNAndNNN: true}).Total
		}
	})
}

// BenchmarkPhase1Kernels compares the phase-1 probe kernels on a
// preprocessed graph: scalar per-pair bit tests, the word-parallel
// bitmap kernel, and the per-row auto dispatch. phase1-ms/op isolates
// the phase being ablated from the (shared) HNN/NNN time.
func BenchmarkPhase1Kernels(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	for _, k := range []core.Phase1Kernel{core.Phase1Scalar, core.Phase1Word, core.Phase1Auto} {
		b.Run(k.String(), func(b *testing.B) {
			var p1 float64
			for i := 0; i < b.N; i++ {
				res := lg.CountWithOptions(pool, core.CountOptions{Phase1Kernel: k})
				p1 += res.Phase1Time.Seconds()
				benchSink += res.Total
			}
			b.ReportMetric(p1/float64(b.N)*1e3, "phase1-ms/op")
		})
	}
}

// BenchmarkIntersectDispatch compares unconditional merge join
// against the adaptive merge/galloping dispatch in the HNN and NNN
// phases.
func BenchmarkIntersectDispatch(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	for _, k := range []core.IntersectKernel{core.IntersectMerge, core.IntersectAdaptive} {
		b.Run(k.String(), func(b *testing.B) {
			var hnn, nnn float64
			for i := 0; i < b.N; i++ {
				res := lg.CountWithOptions(pool, core.CountOptions{Intersect: k})
				hnn += res.HNNTime.Seconds()
				nnn += res.NNNTime.Seconds()
				benchSink += res.Total
			}
			b.ReportMetric(hnn/float64(b.N)*1e3, "hnn-ms/op")
			b.ReportMetric(nnn/float64(b.N)*1e3, "nnn-ms/op")
		})
	}
}

// BenchmarkAblationPreprocess compares the two Algorithm 2
// implementations (materialize+split vs literal per-edge).
func BenchmarkAblationPreprocess(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	b.Run("Materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg := core.PreprocessMaterialize(g, core.Options{Pool: pool})
			benchSink += uint64(lg.HE.NumEdges())
		}
	})
	b.Run("DirectAlg2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg := core.PreprocessDirect(g, core.Options{Pool: pool})
			benchSink += uint64(lg.HE.NumEdges())
		}
	})
}

// BenchmarkExtensionKClique measures k-clique counting, generic vs
// LOTUS-structured (§7).
func BenchmarkExtensionKClique(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(11, 8, 2))
	og := g.Orient()
	lg := core.Preprocess(g, core.Options{})
	pool := sched.NewPool(0)
	for _, k := range []int{3, 4} {
		b.Run("generic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += kclique.Count(og, k, pool)
			}
		})
		b.Run("lotus", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += kclique.CountLotus(lg, k, pool)
			}
		})
	}
}

// BenchmarkExtensionApprox measures the estimators.
func BenchmarkExtensionApprox(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 3))
	pool := sched.NewPool(0)
	b.Run("doulion-p0.3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += uint64(approx.Doulion(g, 0.3, int64(i), pool))
		}
	})
	b.Run("wedge-100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += uint64(approx.WedgeSampling(g, 100000, int64(i)))
		}
	})
	b.Run("hybrid-p0.3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += uint64(approx.Hybrid(g, 0.3, int64(i), core.Options{Pool: pool}, pool).Estimate)
		}
	})
}

// BenchmarkSchedulers compares the shared-counter self-scheduler
// against the Chase-Lev work-stealing deques on phase 1.
func BenchmarkSchedulers(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	lg := core.Preprocess(g, core.Options{Pool: pool})
	thr := harness.DefaultTileThresholdForSuite(benchSuite)
	b.Run("SharedCounter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += lg.CountWithOptions(pool, core.CountOptions{TileThreshold: thr}).Total
		}
	})
	b.Run("WorkStealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += lg.CountWithOptions(pool, core.CountOptions{TileThreshold: thr, WorkStealing: true}).Total
		}
	})
}

// BenchmarkExtensionStreaming measures streamed hub-triangle
// counting (§6.2).
func BenchmarkExtensionStreaming(b *testing.B) {
	g := gen.RMAT(gen.DefaultRMAT(12, 8, 2))
	edges := g.Edges()
	hubs := TopDegreeVertices(g, g.NumVertices()/100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := NewStreamingCounter(g.NumVertices(), hubs)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range edges {
			sc.AddEdge(e.U, e.V)
		}
		benchSink += sc.HubTriangles()
	}
}

// BenchmarkExtensionRecursive measures the recursive NHE split.
func BenchmarkExtensionRecursive(b *testing.B) {
	g := benchGraph()
	pool := sched.NewPool(0)
	for i := 0; i < b.N; i++ {
		rr, err := core.CountRecursive(g, pool, core.RecursiveOptions{MaxDepth: 3})
		if err != nil {
			b.Fatal(err)
		}
		benchSink += rr.Total
	}
}

// discard is an io.Writer that swallows harness output in benches.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

var _ io.Writer = discard{}
