package lotustc

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCountNilGraph(t *testing.T) {
	if _, err := Count(nil, Options{}); err == nil {
		t.Fatal("nil graph should error, not panic")
	}
	if _, err := CountContext(context.Background(), nil, Options{}); err == nil {
		t.Fatal("nil graph should error through CountContext too")
	}
}

// TestCountRecursiveEmptyGraph is the regression test for the
// rr.Levels[len(rr.Levels)-1] panic: on a graph with no edges the
// recursive variant can finish with degenerate levels and must still
// return a zero count, not panic.
func TestCountRecursiveEmptyGraph(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := FromEdges(nil, n)
		res, err := Count(g, Options{Algorithm: AlgoLotusRecursive})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Triangles != 0 || res.NNN != 0 {
			t.Fatalf("n=%d: empty graph counted %d triangles (NNN=%d)", n, res.Triangles, res.NNN)
		}
	}
}

func TestCountContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CountContext(ctx, RMAT(10, 8, 42), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCountTimeoutOption(t *testing.T) {
	scale := uint(16)
	if testing.Short() {
		scale = 13
	}
	g := RMAT(scale, 16, 42)
	_, err := Count(g, Options{Timeout: time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// A generous timeout must not perturb the count.
	res, err := Count(g, Options{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Count(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != want.Triangles {
		t.Fatalf("timeout-bounded count %d != unbounded %d", res.Triangles, want.Triangles)
	}
}
