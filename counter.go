package lotustc

import (
	"lotustc/internal/core"
	"lotustc/internal/reorder"
	"lotustc/internal/sched"
)

// LotusCounter is a reusable handle over a preprocessed LOTUS graph:
// preprocess once (or load from disk), count many times. Fig 6 shows
// preprocessing averages ~20% of end-to-end time, so amortizing it
// matters for repeated analytics on the same graph.
type LotusCounter struct {
	lg   *core.LotusGraph
	pool *sched.Pool
}

// NewLotusCounter preprocesses g into the LOTUS structures.
func NewLotusCounter(g *Graph, opt Options) *LotusCounter {
	pool := sched.NewPool(opt.Workers)
	lg := core.Preprocess(g, core.Options{
		HubCount: opt.HubCount, FrontFraction: opt.FrontFraction, Pool: pool,
	})
	return &LotusCounter{lg: lg, pool: pool}
}

// LoadLotusCounter restores a counter persisted with Save.
func LoadLotusCounter(path string, workers int) (*LotusCounter, error) {
	lg, err := core.LoadLotusFile(path)
	if err != nil {
		return nil, err
	}
	return &LotusCounter{lg: lg, pool: sched.NewPool(workers)}, nil
}

// Save persists the preprocessed structure at path.
func (c *LotusCounter) Save(path string) error { return c.lg.SaveFile(path) }

// HubCount returns the number of hubs selected during preprocessing.
func (c *LotusCounter) HubCount() int { return int(c.lg.HubCount) }

// TopologyBytes returns the LOTUS structure footprint (Table 7).
func (c *LotusCounter) TopologyBytes() int64 { return c.lg.TopologyBytes() }

// PreprocessTime returns the preprocessing wall time (zero for
// counters restored from disk).
func (c *LotusCounter) PreprocessTime() (d int64) {
	return int64(c.lg.PreprocessTime)
}

// Count runs the three LOTUS phases and returns the populated Result.
func (c *LotusCounter) Count() *Result {
	cr := c.lg.Count(c.pool)
	return &Result{
		Algorithm: AlgoLotus,
		Triangles: cr.Total,
		Elapsed:   cr.Phase1Time + cr.HNNTime + cr.NNNTime,
		Phase1:    cr.Phase1Time, HNNPhase: cr.HNNTime, NNNPhase: cr.NNNTime,
		Preprocess: c.lg.PreprocessTime,
		HHH:        cr.HHH, HHN: cr.HHN, HNN: cr.HNN, NNN: cr.NNN,
	}
}

// PerVertexTriangles returns the triangle participation count of
// every vertex, indexed by the graph's original vertex IDs.
func (c *LotusCounter) PerVertexTriangles() []uint64 {
	per := c.lg.CountPerVertex(c.pool)
	inv := reorder.Inverse(c.lg.Relabeling)
	out := make([]uint64, len(per))
	for newID, count := range per {
		out[inv[newID]] = count
	}
	return out
}
