package lotustc

import "lotustc/internal/gen"

// RMAT generates a Graph500-style R-MAT graph with 2^scale vertices
// and ~edgeFactor*2^scale sampled edges — the repository's
// social-network analog (skewed degree distribution).
func RMAT(scale uint, edgeFactor int, seed int64) *Graph {
	return gen.RMAT(gen.DefaultRMAT(scale, edgeFactor, seed))
}

// ChungLu generates a Chung-Lu power-law graph with exponent gamma
// (2 < gamma < 3 matches most real-world graphs; smaller is more
// skewed) — the web-graph analog.
func ChungLu(n, m int, gamma float64, seed int64) *Graph {
	return gen.ChungLu(gen.ChungLuParams{N: n, M: m, Gamma: gamma, Seed: seed})
}

// ChungLuCapped generates a Chung-Lu graph whose maximum expected
// degree is truncated, flattening the distribution — the paper's
// §5.5 "less power-law" Friendster regime.
func ChungLuCapped(n, m int, gamma, cap float64, seed int64) *Graph {
	return gen.ChungLu(gen.ChungLuParams{N: n, M: m, Gamma: gamma, MaxDegreeCap: cap, Seed: seed})
}

// ErdosRenyi generates a uniform random graph: the non-power-law
// baseline on which LOTUS's hub machinery has nothing to exploit.
func ErdosRenyi(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// BarabasiAlbert grows a preferential-attachment scale-free graph
// (each new vertex attaches to m existing vertices proportionally to
// degree) — organically emerging hubs, gamma ≈ 3.
func BarabasiAlbert(n, m int, seed int64) *Graph { return gen.BarabasiAlbert(n, m, seed) }

// Complete returns the complete graph K_n (C(n,3) triangles).
func Complete(n int) *Graph { return gen.Complete(n) }

// Star returns an n-vertex star (no triangles, one extreme hub).
func Star(n int) *Graph { return gen.Star(n) }

// Ring returns the n-cycle.
func Ring(n int) *Graph { return gen.Ring(n) }

// Grid returns the rows x cols lattice (no triangles, high spatial
// locality).
func Grid(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// TriGrid returns the rows x cols lattice with one diagonal per cell:
// 2(rows-1)(cols-1) triangles, flat degrees (<= 6), no hubs — the
// road-network analog AlgoAuto routes to cover-edge counting.
func TriGrid(rows, cols int) *Graph { return gen.TriGrid(rows, cols) }

// HubAndSpokes builds nHubs mutually-connected hubs plus nLeaves
// non-hubs attached to `attach` hubs each — the paper's motivating
// structure in its purest form.
func HubAndSpokes(nHubs, nLeaves, attach int, seed int64) *Graph {
	return gen.HubAndSpokes(nHubs, nLeaves, attach, seed)
}

// PlantedTriangles builds t disjoint triangles plus padding isolated
// vertices: exactly t triangles.
func PlantedTriangles(t, padding int) *Graph { return gen.PlantedTriangles(t, padding) }

// SBM samples a stochastic block model graph: k communities over n
// vertices with in-community edge probability pIn and cross-community
// probability pOut — the community structure that drives real-world
// triangle density.
func SBM(n, k int, pIn, pOut float64, seed int64) *Graph {
	return gen.SBM(gen.SBMParams{N: n, K: k, PIn: pIn, POut: pOut, Seed: seed})
}
