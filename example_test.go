package lotustc_test

import (
	"fmt"

	"lotustc"
)

// Count a small complete graph with LOTUS.
func ExampleCount() {
	g := lotustc.Complete(6) // K6 has C(6,3) = 20 triangles
	res, err := lotustc.Count(g, lotustc.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Triangles)
	// Output: 20
}

// Compare LOTUS against a baseline on the same graph.
func ExampleCount_baseline() {
	g := lotustc.PlantedTriangles(5, 3)
	lotus, _ := lotustc.Count(g, lotustc.Options{Algorithm: lotustc.AlgoLotus})
	fwd, _ := lotustc.Count(g, lotustc.Options{Algorithm: lotustc.AlgoForward})
	fmt.Println(lotus.Triangles, fwd.Triangles, lotus.Triangles == fwd.Triangles)
	// Output: 5 5 true
}

// Classify triangles by their hub content (HHH/HHN/HNN/NNN).
func ExampleResult_classes() {
	// 4 mutually connected hubs plus 10 leaves on 2 hubs each:
	// C(4,3)=4 HHH and 10 HHN triangles.
	g := lotustc.HubAndSpokes(4, 10, 2, 1)
	res, _ := lotustc.Count(g, lotustc.Options{HubCount: 4})
	fmt.Println(res.HHH, res.HHN, res.HNN, res.NNN)
	// Output: 4 10 0 0
}

// Preprocess once, count many times.
func ExampleNewLotusCounter() {
	g := lotustc.Complete(8)
	c := lotustc.NewLotusCounter(g, lotustc.Options{})
	fmt.Println(c.Count().Triangles, c.Count().Triangles)
	// Output: 56 56
}

// k-clique counting, the paper's §7 extension.
func ExampleCountKCliques() {
	g := lotustc.Complete(6)
	for k := 3; k <= 5; k++ {
		n, _ := lotustc.CountKCliques(g, k, lotustc.Options{})
		fmt.Println(k, n)
	}
	// Output:
	// 3 20
	// 4 15
	// 5 6
}

// Streaming hub-triangle counting (§6.2): feed edges one at a time.
func ExampleStreamingCounter() {
	g := lotustc.Complete(4)
	sc, _ := lotustc.NewStreamingCounter(4, lotustc.TopDegreeVertices(g, 2))
	var closed uint64
	for _, e := range g.Edges() {
		closed += sc.AddEdge(e.U, e.V)
	}
	fmt.Println(closed, sc.HubTriangles())
	// Output: 4 4
}

// Per-vertex triangle participation for clustering analysis.
func ExamplePerVertexTriangles() {
	tri := lotustc.PerVertexTriangles(lotustc.Complete(4), 1)
	fmt.Println(tri)
	// Output: [3 3 3 3]
}
