module lotustc

go 1.24
